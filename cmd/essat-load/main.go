// Command essat-load drives an essat-serve instance with concurrent
// spec requests and reports throughput and latency percentiles — the
// harness for validating the server's graceful-degradation behavior
// under real load, and for recording serve-layer numbers alongside the
// engine benchmarks in the BENCH_*.json reports.
//
// Workers pull requests from a shared channel; 429 (shed) and 5xx
// responses retry with jittered exponential backoff, so the measured
// numbers describe the closed-loop behavior a polite client sees. A
// fraction of requests can be deliberately malformed or over-budget to
// exercise the server's error taxonomy mid-burst.
//
// Examples:
//
// With -corpus the driver replays a generated workload corpus (see
// essat-campaign gen) instead of repeating one spec: every corpus spec
// is posted exactly once and the report carries per-status counts, so
// a BENCH serve block records how the server handled the full
// protocol × topology × propagation × radio cross-product.
//
// Examples:
//
//	essat-load -url http://localhost:8080 -n 200 -c 16
//	essat-load -n 200 -c 16 -malformed 2 -overbudget 2 -check -expect-shed
//	essat-load -n 500 -c 32 -benchjson BENCH_after.json
//	essat-load -corpus corpus/ -c 8 -check -benchjson BENCH_after.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/essat/essat/internal/corpus"

	"github.com/essat/essat/internal/stats"
)

// defaultSpec is a mid-sized run (~150k events, tens of milliseconds)
// so a load test exercises concurrency, not patience. phase_max keeps
// every query phase inside the short run: with the 10s default most
// queries would start after the simulation ended and the "run" would
// degenerate to tree setup.
const defaultSpec = `{"protocol":"DTS-SS","nodes":40,"area":350,"duration":"10s","workload":{"base_rate":2,"per_class":2,"phase_max":"500ms"}}`

// kind labels what each request deliberately is, so the driver can
// assert the server answered each class correctly.
type kind int

const (
	kindOK kind = iota
	kindMalformed
	kindOverBudget
)

// expected maps each request kind to the status a correct server
// eventually answers with (after shed retries).
func (k kind) expected() int {
	switch k {
	case kindMalformed:
		return http.StatusBadRequest
	case kindOverBudget:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusOK
	}
}

// counters aggregates outcomes across workers.
type counters struct {
	ok, badSpec, budget, shed, retries, errors atomic.Uint64

	// statuses counts terminal HTTP statuses (post-retry), for the
	// per-spec breakdown corpus replays report.
	statusMu sync.Mutex
	statuses map[int]uint64
}

func (c *counters) status(code int) {
	c.statusMu.Lock()
	if c.statuses == nil {
		c.statuses = make(map[int]uint64)
	}
	c.statuses[code]++
	c.statusMu.Unlock()
}

// job is one request to send: its taxonomy kind plus the body to post.
type job struct {
	k    kind
	body string
}

func main() {
	var (
		url        = flag.String("url", "http://localhost:8080", "essat-serve base URL")
		n          = flag.Int("n", 200, "total requests")
		c          = flag.Int("c", 16, "concurrent workers")
		specPath   = flag.String("spec", "", "spec file to post (empty = a small built-in DTS-SS run)")
		corpusDir  = flag.String("corpus", "", "replay a generated corpus directory (essat-campaign gen) instead of repeating one spec; overrides -n/-spec/-malformed/-overbudget")
		malformed  = flag.Int("malformed", 0, "of the N requests, send this many malformed specs (expect 400)")
		overbudget = flag.Int("overbudget", 0, "of the N requests, send this many with max_events=1000 (expect 422)")
		retries    = flag.Int("retries", 14, "max retries per request on 429/503/network errors")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
		benchjson  = flag.String("benchjson", "", "merge the results as a \"serve\" block into this BENCH_*.json file")
		check      = flag.Bool("check", false, "exit non-zero unless every request eventually got its expected status")
		expectShed = flag.Bool("expect-shed", false, "with -check, also require at least one 429 (proves shedding engaged)")
	)
	flag.Parse()

	if *c <= 0 {
		fatal(fmt.Errorf("c must be positive"))
	}
	var jobs chan job
	corpusSpecs := 0
	if *corpusDir != "" {
		// Corpus replay: every spec in the corpus, exactly once. All are
		// well-formed by the corpus contract, so they all expect 200.
		if *malformed > 0 || *overbudget > 0 {
			fatal(fmt.Errorf("-corpus replays only well-formed specs; drop -malformed/-overbudget"))
		}
		_, items, err := corpus.Load(*corpusDir)
		if err != nil {
			fatal(err)
		}
		corpusSpecs = len(items)
		*n = len(items)
		jobs = make(chan job, len(items))
		for _, it := range items {
			body, err := json.Marshal(it.Spec)
			if err != nil {
				fatal(err)
			}
			jobs <- job{k: kindOK, body: string(body)}
		}
		close(jobs)
	} else {
		if *n <= 0 {
			fatal(fmt.Errorf("n must be positive"))
		}
		if *malformed+*overbudget > *n {
			fatal(fmt.Errorf("malformed+overbudget (%d) exceeds n (%d)", *malformed+*overbudget, *n))
		}
		spec := defaultSpec
		if *specPath != "" {
			data, err := os.ReadFile(*specPath)
			if err != nil {
				fatal(err)
			}
			spec = string(data)
		}

		// Interleave the special requests through the stream instead of
		// front-loading them, so they land mid-burst.
		jobs = make(chan job, *n)
		for i, m, o := 0, *malformed, *overbudget; i < *n; i++ {
			switch {
			case m > 0 && i%3 == 1:
				jobs <- job{k: kindMalformed, body: spec}
				m--
			case o > 0 && i%3 == 2:
				jobs <- job{k: kindOverBudget, body: spec}
				o--
			default:
				jobs <- job{k: kindOK, body: spec}
			}
		}
		close(jobs)
	}

	client := &http.Client{Timeout: *timeout}
	var (
		ctr       counters
		latMu     sync.Mutex
		latencies []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker) + 1))
			var local []time.Duration
			for jb := range jobs {
				lat, ok := doRequest(client, rng, *url, jb, *retries, &ctr)
				if ok && jb.k == kindOK {
					local = append(local, lat)
				}
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := buildReport(*url, *n, *c, wall, latencies, &ctr)
	if corpusSpecs > 0 {
		rep.CorpusSpecs = corpusSpecs
		rep.StatusCounts = make(map[string]uint64, len(ctr.statuses))
		ctr.statusMu.Lock()
		for code, cnt := range ctr.statuses {
			rep.StatusCounts[strconv.Itoa(code)] = cnt
		}
		ctr.statusMu.Unlock()
	}
	fetchCacheStats(client, *url, &rep)
	printReport(rep)

	if *benchjson != "" {
		if err := mergeBench(*benchjson, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("serve block merged into %s\n", *benchjson)
	}

	if *check {
		want := uint64(*n)
		got := ctr.ok.Load() + ctr.badSpec.Load() + ctr.budget.Load()
		if got != want || ctr.errors.Load() > 0 {
			fatal(fmt.Errorf("check failed: %d/%d requests reached their expected status (%d gave up or mismatched)",
				got, want, ctr.errors.Load()))
		}
		if ctr.badSpec.Load() != uint64(*malformed) || ctr.budget.Load() != uint64(*overbudget) {
			fatal(fmt.Errorf("check failed: bad_spec=%d (want %d), budget=%d (want %d)",
				ctr.badSpec.Load(), *malformed, ctr.budget.Load(), *overbudget))
		}
		if *expectShed && ctr.shed.Load() == 0 {
			fatal(fmt.Errorf("check failed: no request was shed (server never returned 429)"))
		}
	}
}

// doRequest sends one request (with retries on shed/unavailable/network
// failures) and reports the end-to-end latency of the final, successful
// attempt and whether the terminal status matched the kind's
// expectation. Terminal mismatches and exhausted retries count into
// ctr.errors.
func doRequest(client *http.Client, rng *rand.Rand, baseURL string, jb job, maxRetries int, ctr *counters) (time.Duration, bool) {
	url := baseURL + "/run"
	body := jb.body
	switch jb.k {
	case kindMalformed:
		body = `{"protocol": "DTS-SS", "definitely_not_a_field": `
	case kindOverBudget:
		url += "?max_events=1000"
	}

	backoff := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", strings.NewReader(body))
		var status int
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
		}
		lat := time.Since(t0)

		retryable := err != nil || status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		if status == http.StatusTooManyRequests {
			ctr.shed.Add(1)
		}
		if !retryable {
			ctr.status(status)
			switch status {
			case http.StatusOK:
				ctr.ok.Add(1)
			case http.StatusBadRequest:
				ctr.badSpec.Add(1)
			case http.StatusUnprocessableEntity:
				ctr.budget.Add(1)
			}
			if status != jb.k.expected() {
				ctr.errors.Add(1)
				return lat, false
			}
			return lat, true
		}
		if attempt >= maxRetries {
			ctr.errors.Add(1)
			return lat, false
		}
		ctr.retries.Add(1)
		// Exponential backoff with full jitter, capped at 2s.
		sleep := time.Duration(rng.Int63n(int64(backoff) + 1))
		time.Sleep(sleep)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// report is the JSON "serve" block and the stdout summary.
type report struct {
	URL            string  `json:"url"`
	Requests       int     `json:"requests"`
	Concurrency    int     `json:"concurrency"`
	WallSeconds    float64 `json:"wall_seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`
	OK             uint64  `json:"ok"`
	BadSpec        uint64  `json:"bad_spec"`
	Budget         uint64  `json:"budget"`
	Shed           uint64  `json:"shed"`
	Retries        uint64  `json:"retries"`
	Errors         uint64  `json:"errors"`
	// CacheHits and CacheMisses are the server's deployment-cache
	// counters after the burst (fetched from /readyz): hits are runs
	// that skipped topology placement and tree construction.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CorpusSpecs and StatusCounts describe a corpus replay: how many
	// specs the corpus held and the terminal HTTP status each landed on
	// (keyed by status code). Absent for single-spec bursts.
	CorpusSpecs  int               `json:"corpus_specs,omitempty"`
	StatusCounts map[string]uint64 `json:"status_counts,omitempty"`
}

// fetchCacheStats reads the server's deployment-cache counters off
// /readyz. Best-effort: a fetch failure leaves the counters zero (the
// load numbers themselves are unaffected).
func fetchCacheStats(client *http.Client, baseURL string, r *report) {
	resp, err := client.Get(baseURL + "/readyz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st struct {
		CacheHits   uint64 `json:"cache_hits"`
		CacheMisses uint64 `json:"cache_misses"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) == nil {
		r.CacheHits, r.CacheMisses = st.CacheHits, st.CacheMisses
	}
}

func buildReport(url string, n, c int, wall time.Duration, lats []time.Duration, ctr *counters) report {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 { return pctMs(lats, p) }
	return report{
		URL:            url,
		Requests:       n,
		Concurrency:    c,
		WallSeconds:    wall.Seconds(),
		RequestsPerSec: float64(n) / wall.Seconds(),
		LatencyP50Ms:   pct(0.50),
		LatencyP99Ms:   pct(0.99),
		OK:             ctr.ok.Load(),
		BadSpec:        ctr.badSpec.Load(),
		Budget:         ctr.budget.Load(),
		Shed:           ctr.shed.Load(),
		Retries:        ctr.retries.Load(),
		Errors:         ctr.errors.Load(),
	}
}

// pctMs returns the nearest-rank p-th percentile of sorted latencies in
// milliseconds — the same percentile definition the engine's
// DurationStats uses (stats.Percentile), so serve-layer and engine
// reports are comparable.
func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(stats.Percentile(sorted, p)) / float64(time.Millisecond)
}

func printReport(r report) {
	fmt.Printf("target          %s\n", r.URL)
	fmt.Printf("requests        %d over %d workers in %.2fs\n", r.Requests, r.Concurrency, r.WallSeconds)
	fmt.Printf("throughput      %.1f requests/sec\n", r.RequestsPerSec)
	fmt.Printf("latency         p50 %.1f ms, p99 %.1f ms (successful runs)\n", r.LatencyP50Ms, r.LatencyP99Ms)
	fmt.Printf("outcomes        %d ok, %d bad_spec, %d budget; %d shed responses, %d retries, %d gave up\n",
		r.OK, r.BadSpec, r.Budget, r.Shed, r.Retries, r.Errors)
	fmt.Printf("deploy cache    %d hits, %d misses (server lifetime)\n", r.CacheHits, r.CacheMisses)
	if r.CorpusSpecs > 0 {
		codes := make([]string, 0, len(r.StatusCounts))
		for code := range r.StatusCounts {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		var parts []string
		for _, code := range codes {
			parts = append(parts, fmt.Sprintf("%s×%d", code, r.StatusCounts[code]))
		}
		fmt.Printf("corpus          %d specs replayed: %s\n", r.CorpusSpecs, strings.Join(parts, ", "))
	}
}

// mergeBench inserts the report as the "serve" key of an existing
// BENCH_*.json file (creating the file if absent), preserving whatever
// else the benchmark harness wrote there.
func mergeBench(path string, r report) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc["serve"] = r
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "essat-load:", err)
	os.Exit(1)
}
