package main

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/stats/statstest"
)

// The load report's percentiles must agree with the engine's
// DurationStats definition; both run the same shared table.
func TestPctMsMatchesSharedTable(t *testing.T) {
	for _, c := range statstest.PercentileCases {
		want := float64(c.Want) / float64(time.Millisecond)
		if got := pctMs(c.Sorted, c.P); got != want {
			t.Errorf("%s: pctMs(p=%g) = %v, want %v", c.Name, c.P, got, want)
		}
	}
}
