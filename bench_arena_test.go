package essat_test

import (
	"testing"
	"time"

	"github.com/essat/essat"
)

// BenchmarkLargeRunArena is BenchmarkLargeRun's steady-state companion:
// the identical 1000-node spec repeated on one reused arena, so
// allocs/op converges to the per-run allocation floor the arenas leave
// behind (BenchmarkLargeRun measures the allocate-everything path).
func BenchmarkLargeRunArena(b *testing.B) {
	spec, err := essat.LoadSpec("testdata/large.json")
	if err != nil {
		b.Fatal(err)
	}
	spec.Duration = essat.Dur(6 * time.Second)
	spec.MeasureFrom = nil
	arena := essat.NewArenaWithCache(essat.NewDeployCache(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := *spec
		res, err := essat.RunSpecWith(arena, &run)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Events)/6, "events/simsec")
		}
	}
}
