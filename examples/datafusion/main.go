// Datafusion: the paper's introduction motivates ESSAT with distributed
// signal processing — "in many distributed signal processing applications
// (e.g., target detection), multiple sensor nodes sample and exchange
// data at application-specific sampling frequencies for data fusion."
//
// The example runs a target-tracking workload under DTS-SS: the usual
// aggregation queries plus several periodic peer-to-peer flows between
// random sensor pairs exchanging samples for fusion. Safe Sleep schedules
// wake-ups for the relay slots of each flow exactly as it does for query
// reports, so the peer traffic rides the same timing semantics.
//
//	go run ./examples/datafusion
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/essat/essat"
)

func main() {
	base := func(peers int) (*essat.Result, error) {
		spec := essat.Spec{
			Protocol: "DTS-SS",
			Seed:     1,
			Duration: essat.Dur(60 * time.Second),
			Workload: &essat.Workload{BaseRate: 1.0, PerClass: 1, Seed: 23},
		}
		for i := 0; i < peers; i++ {
			spec.Peers = append(spec.Peers, essat.FlowSpec{
				ID:           int64(-(i + 1)),                   // disjoint from query IDs
				Period:       essat.Dur(500 * time.Millisecond), // 2 Hz fusion exchange
				Phase:        essat.Dur(5 * time.Second),
				HopAllowance: essat.Dur(30 * time.Millisecond),
				// Src/Dst omitted: a random pair per flow.
			})
		}
		return essat.RunSpec(&spec)
	}

	queriesOnly, err := base(0)
	if err != nil {
		log.Fatal(err)
	}
	fused, err := base(4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Target-tracking data fusion: aggregation queries + 4 peer flows (DTS-SS)")
	fmt.Printf("  tree: %d nodes, max rank %d\n\n", fused.TreeSize, fused.MaxRank)
	fmt.Printf("  queries only:  duty %.2f%%   query latency %v\n",
		queriesOnly.DutyCycle*100, queriesOnly.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("  with fusion:   duty %.2f%%   query latency %v\n",
		fused.DutyCycle*100, fused.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("\n  peer flows (2 Hz sample exchange between 4 random pairs):\n")
	fmt.Printf("    delivery: %.1f%% of released samples consumed\n", fused.P2PDelivery*100)
	fmt.Printf("    latency:  %v release → fusion input\n", fused.P2PLatency.Round(time.Millisecond))
	fmt.Printf("\n  adding 8 messages/s of peer traffic cost %.2f points of duty cycle.\n",
		(fused.DutyCycle-queriesOnly.DutyCycle)*100)
}
