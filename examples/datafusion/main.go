// Datafusion: the paper's introduction motivates ESSAT with distributed
// signal processing — "in many distributed signal processing applications
// (e.g., target detection), multiple sensor nodes sample and exchange
// data at application-specific sampling frequencies for data fusion."
//
// The example runs a target-tracking workload under DTS-SS: the usual
// aggregation queries plus several periodic peer-to-peer flows between
// random sensor pairs exchanging samples for fusion. Safe Sleep schedules
// wake-ups for the relay slots of each flow exactly as it does for query
// reports, so the peer traffic rides the same timing semantics.
//
//	go run ./examples/datafusion
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/essat/essat"
)

func main() {
	base := func(seed int64, peers int) (*essat.Result, error) {
		sc := essat.DefaultScenario(essat.DTSSS, seed)
		sc.Duration = 60 * time.Second
		rng := rand.New(rand.NewSource(seed * 23))
		sc.Queries = essat.QueryClasses(rng, 1.0, 1, 10*time.Second)
		for i := 0; i < peers; i++ {
			sc.PeerFlows = append(sc.PeerFlows, essat.P2PSpec{
				ID:           essat.QueryID(-(i + 1)), // disjoint from query IDs
				Src:          -1,                      // random pair per seed
				Dst:          -1,
				Period:       500 * time.Millisecond, // 2 Hz fusion exchange
				Phase:        5 * time.Second,
				HopAllowance: 30 * time.Millisecond,
			})
		}
		return essat.Run(sc)
	}

	queriesOnly, err := base(1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fused, err := base(1, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Target-tracking data fusion: aggregation queries + 4 peer flows (DTS-SS)")
	fmt.Printf("  tree: %d nodes, max rank %d\n\n", fused.TreeSize, fused.MaxRank)
	fmt.Printf("  queries only:  duty %.2f%%   query latency %v\n",
		queriesOnly.DutyCycle*100, queriesOnly.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("  with fusion:   duty %.2f%%   query latency %v\n",
		fused.DutyCycle*100, fused.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("\n  peer flows (2 Hz sample exchange between 4 random pairs):\n")
	fmt.Printf("    delivery: %.1f%% of released samples consumed\n", fused.P2PDelivery*100)
	fmt.Printf("    latency:  %v release → fusion input\n", fused.P2PLatency.Round(time.Millisecond))
	fmt.Printf("\n  adding 8 messages/s of peer traffic cost %.2f points of duty cycle.\n",
		(fused.DutyCycle-queriesOnly.DutyCycle)*100)
}
