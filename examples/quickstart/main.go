// Quickstart: run one DTS-SS simulation on the paper's default deployment
// and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/essat/essat"
)

func main() {
	// The paper's setup: 80 nodes in 500×500 m², aggregation tree within
	// 300 m of the central root, MICA2-like radio — all defaults of the
	// declarative spec. The workload is three query classes with rate
	// ratio 6:3:2, base rate 1 Hz, starting at random phases in the
	// first 10 seconds.
	spec := essat.Spec{
		Protocol: "DTS-SS",
		Seed:     1,
		Duration: essat.Dur(60 * time.Second),
		Workload: &essat.Workload{BaseRate: 1.0, PerClass: 1, Seed: 42},
	}
	res, err := essat.RunSpec(&spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ESSAT quickstart — DTS-SS on the paper's default deployment")
	fmt.Printf("  tree: %d nodes, max rank %d\n", res.TreeSize, res.MaxRank)
	fmt.Printf("  average duty cycle:   %.2f%%\n", res.DutyCycle*100)
	fmt.Printf("  query latency (mean): %v\n", res.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("  query latency (p95):  %v\n", res.Latency.P95.Round(time.Millisecond))
	fmt.Printf("  aggregate coverage:   %.1f of %d sources per interval\n", res.Coverage, res.TreeSize)
	fmt.Printf("  DTS overhead:         %.3f piggybacked bits per report (%d phase shifts)\n",
		res.PhaseUpdateBitsPerReport, res.PhaseShifts)

	// For contrast, the same workload under the SYNC baseline: only the
	// protocol name changes.
	spec.Protocol = "SYNC"
	res2, err := essat.RunSpec(&spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame workload under SYNC (fixed 20% duty):")
	fmt.Printf("  average duty cycle:   %.2f%%\n", res2.DutyCycle*100)
	fmt.Printf("  query latency (mean): %v\n", res2.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("\nDTS-SS used %.1f%% of SYNC's energy at %.1f%% of its latency.\n",
		res.DutyCycle/res2.DutyCycle*100,
		float64(res.Latency.Mean)/float64(res2.Latency.Mean)*100)
}
