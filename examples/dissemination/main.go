// Dissemination: the §3 extension — "ESSAT can also be extended to
// support other communication patterns such as peer-to-peer
// communication or data dissemination."
//
// The example runs bidirectional traffic under DTS-SS: the usual upward
// aggregation queries plus a periodic downstream command flow from the
// base station (e.g. re-tasking or actuation commands), with Safe Sleep
// scheduling wake-ups for both directions on the same radio. It prints
// the downstream delivery ratio and latency and the energy cost of
// adding the second direction.
//
//	go run ./examples/dissemination
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/essat/essat"
)

func main() {
	base := func(seed int64) essat.Scenario {
		sc := essat.DefaultScenario(essat.DTSSS, seed)
		sc.Duration = 60 * time.Second
		rng := rand.New(rand.NewSource(seed * 13))
		sc.Queries = essat.QueryClasses(rng, 1.0, 1, 10*time.Second)
		return sc
	}

	up, err := essat.Run(base(1))
	if err != nil {
		log.Fatal(err)
	}

	both := base(1)
	both.Dissemination = []essat.DisseminationSpec{{
		ID:           -1, // disjoint from query IDs
		Period:       2 * time.Second,
		Phase:        5 * time.Second,
		HopAllowance: 50 * time.Millisecond,
	}}
	res, err := essat.Run(both)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Bidirectional ESSAT: upward aggregation + downstream commands (DTS-SS)")
	fmt.Printf("  tree: %d nodes, max rank %d\n\n", res.TreeSize, res.MaxRank)
	fmt.Printf("  upward only:   duty %.2f%%   query latency %v\n",
		up.DutyCycle*100, up.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("  bidirectional: duty %.2f%%   query latency %v\n",
		res.DutyCycle*100, res.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("\n  downstream flow (every 2s):\n")
	fmt.Printf("    delivery ratio: %.1f%% of node-intervals\n", res.DisseminationDelivery*100)
	fmt.Printf("    mean latency:   %v from release to reception\n",
		res.DisseminationLatency.Round(time.Millisecond))
	fmt.Printf("\n  the downstream direction added %.2f points of duty cycle —\n",
		(res.DutyCycle-up.DutyCycle)*100)
	fmt.Println("  nodes wake for per-level forwarding slots just as they do for")
	fmt.Println("  expected reports, so commands ride the same timing semantics.")
}
