// Dissemination: the §3 extension — "ESSAT can also be extended to
// support other communication patterns such as peer-to-peer
// communication or data dissemination."
//
// The example runs bidirectional traffic under DTS-SS: the usual upward
// aggregation queries plus a periodic downstream command flow from the
// base station (e.g. re-tasking or actuation commands), with Safe Sleep
// scheduling wake-ups for both directions on the same radio. It prints
// the downstream delivery ratio and latency and the energy cost of
// adding the second direction.
//
//	go run ./examples/dissemination
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/essat/essat"
)

func main() {
	spec := essat.Spec{
		Protocol: "DTS-SS",
		Seed:     1,
		Duration: essat.Dur(60 * time.Second),
		Workload: &essat.Workload{BaseRate: 1.0, PerClass: 1, Seed: 13},
	}

	up, err := essat.RunSpec(&spec)
	if err != nil {
		log.Fatal(err)
	}

	both := spec
	both.Dissemination = []essat.FlowSpec{{
		ID:           -1, // disjoint from query IDs
		Period:       essat.Dur(2 * time.Second),
		Phase:        essat.Dur(5 * time.Second),
		HopAllowance: essat.Dur(50 * time.Millisecond),
	}}
	res, err := essat.RunSpec(&both)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Bidirectional ESSAT: upward aggregation + downstream commands (DTS-SS)")
	fmt.Printf("  tree: %d nodes, max rank %d\n\n", res.TreeSize, res.MaxRank)
	fmt.Printf("  upward only:   duty %.2f%%   query latency %v\n",
		up.DutyCycle*100, up.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("  bidirectional: duty %.2f%%   query latency %v\n",
		res.DutyCycle*100, res.Latency.Mean.Round(time.Millisecond))
	fmt.Printf("\n  downstream flow (every 2s):\n")
	fmt.Printf("    delivery ratio: %.1f%% of node-intervals\n", res.DisseminationDelivery*100)
	fmt.Printf("    mean latency:   %v from release to reception\n",
		res.DisseminationLatency.Round(time.Millisecond))
	fmt.Printf("\n  the downstream direction added %.2f points of duty cycle —\n",
		(res.DutyCycle-up.DutyCycle)*100)
	fmt.Println("  nodes wake for per-level forwarding slots just as they do for")
	fmt.Println("  expected reports, so commands ride the same timing semantics.")
}
