// Surveillance: a latency-critical deployment from the paper's
// introduction — "a surveillance application may require the network to
// report all suspicious events within a few seconds in order to ensure
// timely response to intrusions".
//
// The example runs the same 2 Hz detection query under every registered
// protocol and checks which ones meet a 500 ms reporting deadline, and
// at what energy cost. It demonstrates the paper's core trade-off: ESSAT
// protocols reach near-SPAN latency at a fraction of the energy, while
// PSM and SYNC save energy only by blowing the deadline.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/essat/essat"
)

func main() {
	const (
		deadline = 500 * time.Millisecond
		seeds    = 3
	)

	fmt.Println("Surveillance scenario: 2 Hz detection query, 500 ms reporting deadline")
	fmt.Printf("%-8s %12s %12s %12s %10s\n", "protocol", "duty (%)", "mean lat", "p95 lat", "deadline")

	for _, p := range essat.AllProtocols() {
		var duty, lat, p95 float64
		met := true
		for seed := int64(1); seed <= seeds; seed++ {
			// One query per class, base rate 2 Hz: Q1 is the 2 Hz
			// detection stream; Q2/Q3 are slower housekeeping queries.
			res, err := essat.RunSpec(&essat.Spec{
				Protocol: string(p),
				Seed:     seed,
				Duration: essat.Dur(60 * time.Second),
				Workload: &essat.Workload{
					BaseRate: 2.0, PerClass: 1,
					PhaseMax: essat.Dur(5 * time.Second), Seed: seed * 31,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			duty += res.DutyCycle * 100 / seeds
			// The detection stream is class 1.
			q1 := res.LatencyByClass[1]
			lat += q1.Mean.Seconds() / seeds
			p95 += q1.P95.Seconds() / seeds
			if q1.P95 > deadline {
				met = false
			}
		}
		verdict := "MET"
		if !met {
			verdict = "missed"
		}
		fmt.Printf("%-8s %12.2f %11.0fms %11.0fms %10s\n",
			p, duty, lat*1000, p95*1000, verdict)
	}

	fmt.Println("\nESSAT's point: just-in-time wakeups meet the deadline without an")
	fmt.Println("always-on backbone; duty-cycled baselines meet it only by luck.")
}
