// Failover: the paper's §4.3 robustness mechanisms under stress —
// transient packet loss plus mid-run node failures.
//
// The example runs DTS-SS with 5% random frame loss and three node
// failures, and shows (a) DTS resynchronizing its sleep schedules through
// piggybacked phase requests after losses, and (b) the tree healing
// itself: parents drop dead children, orphans re-parent and announce
// themselves with a Join, all while data keeps reaching the root.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/essat/essat"
)

func main() {
	run := func(loss float64, failures int) *essat.Result {
		spec := essat.Spec{
			Protocol:         "DTS-SS",
			Seed:             3,
			Duration:         essat.Dur(120 * time.Second),
			Loss:             loss,
			FailureThreshold: 3, // enable §4.3 failure detection
			Workload:         &essat.Workload{BaseRate: 1.0, PerClass: 1, Seed: 11},
		}
		for i := 0; i < failures; i++ {
			spec.Failures = append(spec.Failures, essat.FailureSpec{
				// Node omitted: a random non-leaf victim per failure.
				At: essat.Dur(30*time.Second + time.Duration(i)*20*time.Second),
			})
		}
		res, err := essat.RunSpec(&spec)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("DTS-SS under network dynamics (§4.3)")
	fmt.Printf("%-34s %10s %12s %12s %14s\n", "condition", "duty (%)", "mean lat", "coverage", "resyncs/fails")

	baseline := run(0, 0)
	fmt.Printf("%-34s %10.2f %11.0fms %9.1f/%d %14s\n",
		"clean channel, no failures", baseline.DutyCycle*100,
		baseline.Latency.Mean.Seconds()*1000, baseline.Coverage, baseline.TreeSize, "-")

	lossy := run(0.05, 0)
	fmt.Printf("%-34s %10.2f %11.0fms %9.1f/%d %14d\n",
		"5% frame loss", lossy.DutyCycle*100,
		lossy.Latency.Mean.Seconds()*1000, lossy.Coverage, lossy.TreeSize, lossy.MACFailed)

	chaos := run(0.05, 3)
	fmt.Printf("%-34s %10.2f %11.0fms %9.1f/%d %14d\n",
		"5% loss + 3 node failures", chaos.DutyCycle*100,
		chaos.Latency.Mean.Seconds()*1000, chaos.Coverage, chaos.TreeSize, chaos.MACFailed)

	fmt.Println("\nCoverage dips by roughly the dead subtrees until orphans re-parent;")
	fmt.Println("duty cycle stays low because stale expected times are cleaned up")
	fmt.Println("(parents stop waiting for dead children) and phase updates resync")
	fmt.Println("the survivors' sleep schedules.")
}
