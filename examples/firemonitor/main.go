// Firemonitor: the paper's motivating workload-surge scenario — "while
// the workload in a fire monitoring system may be moderate during normal
// conditions, it may increase sharply after a wild fire is detected".
//
// The example compares a quiet period (one slow query per class) against
// an alarm period (six queries per class at a 5× base rate) and shows how
// each protocol's energy adapts: ESSAT duty cycles track the workload,
// SYNC burns a fixed 20% regardless, and SPAN's backbone pays an almost
// constant price. This reproduces the adaptivity argument behind the
// paper's Figure 4.
//
//	go run ./examples/firemonitor
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/essat/essat"
)

type phase struct {
	name     string
	workload essat.Workload
}

func main() {
	phases := []phase{
		{"quiet (0.2 Hz, 1 query/class)", essat.Workload{BaseRate: 0.2, PerClass: 1, Seed: 7}},
		{"alarm (1 Hz, 6 queries/class)", essat.Workload{BaseRate: 1.0, PerClass: 6, Seed: 7}},
	}
	protocols := []essat.Protocol{essat.DTSSS, essat.STSSS, essat.NTSSS, essat.SPAN, essat.SYNC}

	fmt.Println("Fire-monitoring surge: energy adaptation to workload")
	fmt.Printf("%-10s %28s %28s %8s\n", "protocol", phases[0].name, phases[1].name, "ratio")

	for _, p := range protocols {
		var duty [2]float64
		for i, ph := range phases {
			ph := ph
			res, err := essat.RunSpec(&essat.Spec{
				Protocol: string(p),
				Seed:     1,
				Duration: essat.Dur(60 * time.Second),
				Workload: &ph.workload,
			})
			if err != nil {
				log.Fatal(err)
			}
			duty[i] = res.DutyCycle * 100
		}
		fmt.Printf("%-10s %26.2f%% %26.2f%% %7.1fx\n", p, duty[0], duty[1], duty[1]/duty[0])
	}

	fmt.Println("\nESSAT's duty cycle scales with offered load — nodes pay only for the")
	fmt.Println("traffic that exists. Fixed schedules pay the alarm price all year.")
}
