// Firemonitor: the paper's motivating workload-surge scenario — "while
// the workload in a fire monitoring system may be moderate during normal
// conditions, it may increase sharply after a wild fire is detected".
//
// The example compares a quiet period (one slow query per class) against
// an alarm period (six queries per class at a 5× base rate) and shows how
// each protocol's energy adapts: ESSAT duty cycles track the workload,
// SYNC burns a fixed 20% regardless, and SPAN's backbone pays an almost
// constant price. This reproduces the adaptivity argument behind the
// paper's Figure 4.
//
//	go run ./examples/firemonitor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/essat/essat"
)

type phase struct {
	name     string
	baseRate float64
	perClass int
}

func main() {
	phases := []phase{
		{name: "quiet (0.2 Hz, 1 query/class)", baseRate: 0.2, perClass: 1},
		{name: "alarm (1 Hz, 6 queries/class)", baseRate: 1.0, perClass: 6},
	}
	protocols := []essat.Protocol{essat.DTSSS, essat.STSSS, essat.NTSSS, essat.SPAN, essat.SYNC}

	fmt.Println("Fire-monitoring surge: energy adaptation to workload")
	fmt.Printf("%-10s %28s %28s %8s\n", "protocol", phases[0].name, phases[1].name, "ratio")

	for _, p := range protocols {
		var duty [2]float64
		for i, ph := range phases {
			sc := essat.DefaultScenario(p, 1)
			sc.Duration = 60 * time.Second
			rng := rand.New(rand.NewSource(7))
			sc.Queries = essat.QueryClasses(rng, ph.baseRate, ph.perClass, 10*time.Second)
			res, err := essat.Run(sc)
			if err != nil {
				log.Fatal(err)
			}
			duty[i] = res.DutyCycle * 100
		}
		fmt.Printf("%-10s %26.2f%% %26.2f%% %7.1fx\n", p, duty[0], duty[1], duty[1]/duty[0])
	}

	fmt.Println("\nESSAT's duty cycle scales with offered load — nodes pay only for the")
	fmt.Println("traffic that exists. Fixed schedules pay the alarm price all year.")
}
