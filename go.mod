module github.com/essat/essat

go 1.21
