package essat_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/essat/essat"
)

// TestRootSinkPortMatchesLegacy pins the metric-sink refactor's central
// promise: routing the root recorder through the sink registry and
// fanout — with every optional sink attached — executes the exact event
// trace the hardwired pre-registry path did. The fig3 golden digests
// were recorded before the registry existed, so a match proves the port
// is behavior-preserving, not merely self-consistent.
func TestRootSinkPortMatchesLegacy(t *testing.T) {
	data, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var golden map[string]map[string]string
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	for _, p := range []essat.Protocol{essat.DTSSS, essat.STSSS, essat.NTSSS, essat.PSM, essat.SPAN} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			want := golden["fig3"][string(p)+"/rate=1"]
			if want == "" {
				t.Fatalf("no golden digest for %s", p)
			}
			sc := essat.DefaultScenario(p, 1)
			sc.Duration = 20 * time.Second
			sc.Queries = essat.QueryClasses(rand.New(rand.NewSource(7919)), 1, 1, 10*time.Second)
			sc.Propagation = "disc"
			sc.RadioProfile = "paper"
			sc.Audit = true
			sc.Sinks = []essat.SinkChoice{
				{Name: "timeseries", Params: map[string]float64{"bucket_ms": 500}},
				{Name: "energy"},
				{Name: "jsonl"},
			}
			res, err := essat.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Audit.Digest != want {
				t.Errorf("digest with sinks attached %s != legacy golden %s", res.Audit.Digest, want)
			}
			if len(res.Records) != 3 {
				t.Fatalf("got %d records, want 3", len(res.Records))
			}
			for i := range res.Records {
				if err := essat.ValidateMetricRecord(&res.Records[i]); err != nil {
					t.Errorf("record %d (%s) invalid: %v", i, res.Records[i].Sink, err)
				}
			}
		})
	}
}
