// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§5). Each BenchmarkFigN runs a scaled-down version of the
// corresponding experiment (shorter runs, fewer seeds than the paper's
// 200 s × 5 seeds) and logs the resulting series; run cmd/essat-bench
// with -paper for the full-fidelity tables recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package essat_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/essat/essat"
)

// benchOptions keeps each benchmark iteration to a few seconds.
func benchOptions() essat.Options {
	return essat.Options{Duration: 12 * time.Second, Seeds: 1, Nodes: 60}
}

func logFigure(b *testing.B, f *essat.Figure) {
	b.Helper()
	var sb strings.Builder
	essat.PrintFigure(&sb, f)
	b.Log("\n" + sb.String())
}

func BenchmarkFig2_DeadlineSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		deadlines := []time.Duration{50 * time.Millisecond, 125 * time.Millisecond,
			300 * time.Millisecond, 600 * time.Millisecond}
		fig, err := essat.Fig2Deadline(benchOptions(), deadlines)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
		}
	}
}

func BenchmarkFig3_DutyCycleVsRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := essat.Fig3DutyVsRate(benchOptions(), []float64{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
		}
	}
}

func BenchmarkFig4_DutyCycleVsQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := essat.Fig4DutyVsQueries(benchOptions(), []int{1, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
		}
	}
}

func BenchmarkFig5_DutyCycleByRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := essat.Fig5DutyByRank(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
		}
	}
}

func BenchmarkFig6_LatencyVsRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := essat.Fig6LatencyVsRate(benchOptions(), []float64{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
		}
	}
}

func BenchmarkFig7_LatencyVsQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := essat.Fig7LatencyVsQueries(benchOptions(), []int{1, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
		}
	}
}

func BenchmarkFig8_SleepHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, below, err := essat.Fig8SleepHistogram(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
			b.Logf("%% sleeps < 2.5ms (DTS/STS/NTS): %.2f / %.2f / %.2f", below[0], below[1], below[2])
		}
	}
}

func BenchmarkFig9_BreakEvenImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := essat.Fig9BreakEven(benchOptions(), []float64{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
		}
	}
}

func BenchmarkOverhead_PhaseUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := essat.OverheadPhaseUpdates(benchOptions(), []float64{1, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			logFigure(b, fig)
		}
	}
}

// BenchmarkSingleRun measures the raw cost of one 20-second DTS-SS
// simulation at the paper's scale (simulator throughput).
func BenchmarkSingleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := essat.DefaultScenario(essat.DTSSS, int64(i+1))
		sc.Duration = 20 * time.Second
		sc.MeasureFrom = 2 * time.Second
		rng := rand.New(rand.NewSource(int64(i + 1)))
		sc.Queries = essat.QueryClasses(rng, 2, 1, 5*time.Second)
		res, err := essat.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Events)/20, "events/simsec")
		}
	}
}

// BenchmarkLargeRun measures the 1000-node scale tier (testdata/
// large.json, shortened): the spatial-hash topology build plus the
// timer-wheel event loop at 12.5× the paper's node count. The same
// scenario backs `essat-bench -scale`, which records it in the
// BENCH_*.json `scale` section.
func BenchmarkLargeRun(b *testing.B) {
	spec, err := essat.LoadSpec("testdata/large.json")
	if err != nil {
		b.Fatal(err)
	}
	spec.Duration = essat.Dur(6 * time.Second)
	spec.MeasureFrom = nil
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := *spec
		res, err := essat.RunSpec(&run)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Events)/6, "events/simsec")
			b.ReportMetric(float64(res.TreeSize), "tree_members")
		}
	}
}

// BenchmarkHugeRun measures the 10000-node scale tier (testdata/
// huge.json, shortened) on a reused arena — the repeated-spec sweep the
// per-run memory arenas target: after the first iteration warms the
// slabs and the deployment cache, later iterations reset rather than
// reallocate, so allocs/op reports the steady-state floor. The same
// scenario backs `essat-bench -huge`, which records it in the
// BENCH_*.json `huge` section.
func BenchmarkHugeRun(b *testing.B) {
	spec, err := essat.LoadSpec("testdata/huge.json")
	if err != nil {
		b.Fatal(err)
	}
	spec.Duration = essat.Dur(5 * time.Second)
	spec.MeasureFrom = nil
	arena := essat.NewArenaWithCache(essat.NewDeployCache(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := *spec
		res, err := essat.RunSpecWith(arena, &run)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Events)/5, "events/simsec")
			b.ReportMetric(float64(res.TreeSize), "tree_members")
		}
	}
}
